package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// faultErr is the test's worker-fault marker (mirrors what rentmin's
// WorkerFaultError provides in production).
type faultErr struct{ worker int }

func (e *faultErr) Error() string     { return fmt.Sprintf("worker %d faulted", e.worker) }
func (e *faultErr) WorkerFault() bool { return true }
func (e *faultErr) Unwrap() error     { return nil }
func newFault(w int) error            { return &faultErr{worker: w} }

// fastBackoff keeps re-dispatch tests quick.
func fastBackoff(int) time.Duration { return time.Millisecond }

func twoWorkerPool(t *testing.T, cfg RemoteConfig) *RemotePool {
	t.Helper()
	p, err := NewRemote([]RemoteSpec{{Name: "w0", Capacity: 2}, {Name: "w1", Capacity: 2}}, cfg)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestRemoteRedispatchAfterWorkerFault(t *testing.T) {
	p := twoWorkerPool(t, RemoteConfig{Backoff: fastBackoff})
	const n = 12
	var solvedByHealthy atomic.Int64
	out := make([]int64, n)
	err := p.RunContext(context.Background(), n, func(ctx context.Context, i int) error {
		w, ok := AssignedWorker(ctx)
		if !ok {
			return errors.New("no assigned worker")
		}
		if w == 0 {
			return newFault(w) // worker 0 is dead: every dispatch to it faults
		}
		solvedByHealthy.Add(1)
		atomic.StoreInt64(&out[i], int64(i+1))
		return nil
	})
	if err != nil {
		t.Fatalf("RunContext: %v (a dead worker must degrade throughput, not correctness)", err)
	}
	for i := range out {
		if atomic.LoadInt64(&out[i]) != int64(i+1) {
			t.Errorf("item %d never solved", i)
		}
	}
	if solvedByHealthy.Load() != n {
		t.Errorf("healthy worker solved %d items, want all %d", solvedByHealthy.Load(), n)
	}
	stats := p.Stats()
	if stats[0].Faults == 0 {
		t.Errorf("dead worker recorded no faults: %+v", stats[0])
	}
	if stats[0].Succeeded != 0 {
		t.Errorf("dead worker recorded successes: %+v", stats[0])
	}
	if stats[1].Succeeded != n {
		t.Errorf("healthy worker succeeded %d, want %d", stats[1].Succeeded, n)
	}
	if stats[0].InFlight != 0 || stats[1].InFlight != 0 {
		t.Errorf("in-flight not drained: %+v", stats)
	}
}

func TestRemoteBackoffShieldsDeadWorker(t *testing.T) {
	// With a long backoff relative to the run, the dead worker takes one
	// strike (maybe a couple while the first items race) and then sits
	// out; the bulk of the work must not keep bouncing off it.
	p := twoWorkerPool(t, RemoteConfig{Backoff: func(int) time.Duration { return time.Minute }})
	const n = 20
	var faults atomic.Int64
	err := p.RunContext(context.Background(), n, func(ctx context.Context, i int) error {
		if w, _ := AssignedWorker(ctx); w == 0 {
			faults.Add(1)
			return newFault(w)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	// Capacity 2 means at most 2 dispatches can be in flight on worker 0
	// before its first strike lands and the backoff shields it.
	if f := faults.Load(); f > 2 {
		t.Errorf("dead worker was dispatched %d times despite backoff, want <= 2", f)
	}
	if !p.Stats()[0].BackingOff {
		t.Errorf("dead worker not backing off after faults")
	}
	if p.Stats()[0].Strikes == 0 {
		t.Errorf("dead worker has no strikes recorded")
	}
}

func TestRemoteGivesUpAfterMaxAttempts(t *testing.T) {
	p, err := NewRemote(
		[]RemoteSpec{{Name: "w0", Capacity: 1}, {Name: "w1", Capacity: 1}},
		RemoteConfig{Backoff: fastBackoff, MaxAttempts: 3},
	)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer p.Close()
	var tries atomic.Int64
	err = p.RunContext(context.Background(), 1, func(ctx context.Context, i int) error {
		tries.Add(1)
		w, _ := AssignedWorker(ctx)
		return newFault(w) // the whole fleet is down
	})
	if err == nil {
		t.Fatalf("RunContext succeeded with every worker faulting")
	}
	if !IsWorkerFault(err) {
		t.Errorf("final error does not carry the worker fault: %v", err)
	}
	if tries.Load() != 3 {
		t.Errorf("task dispatched %d times, want exactly MaxAttempts = 3", tries.Load())
	}
}

func TestRemoteSuccessResetsStrikes(t *testing.T) {
	p := twoWorkerPool(t, RemoteConfig{Backoff: fastBackoff})
	var flaky atomic.Bool
	flaky.Store(true)
	run := func(n int) error {
		return p.RunContext(context.Background(), n, func(ctx context.Context, i int) error {
			if w, _ := AssignedWorker(ctx); w == 0 && flaky.Load() {
				return newFault(w)
			}
			return nil
		})
	}
	if err := run(6); err != nil {
		t.Fatalf("flaky run: %v", err)
	}
	if p.Stats()[0].Strikes == 0 {
		t.Fatalf("worker 0 took no strikes while flaky")
	}
	flaky.Store(false)
	// Health state persists across Run calls; once the backoff lapses the
	// recovered worker serves again and its strikes reset.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats()[0].Strikes != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("strikes never reset after recovery: %+v", p.Stats()[0])
		}
		if err := run(4); err != nil {
			t.Fatalf("recovered run: %v", err)
		}
	}
}

func TestRemoteConcurrentRunsShareCapacity(t *testing.T) {
	p := twoWorkerPool(t, RemoteConfig{Backoff: fastBackoff})
	var cur, peak atomic.Int64
	task := func(ctx context.Context, i int) error {
		if c := cur.Add(1); c > peak.Load() {
			peak.Store(c)
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.RunContext(context.Background(), 10, task); err != nil {
				t.Errorf("RunContext: %v", err)
			}
		}()
	}
	wg.Wait()
	if peak.Load() > int64(p.Workers()) {
		t.Errorf("observed %d concurrent tasks with fleet capacity %d", peak.Load(), p.Workers())
	}
}

func TestRemotePerWorkerInFlightCap(t *testing.T) {
	p, err := NewRemote(
		[]RemoteSpec{{Name: "w0", Capacity: 1}, {Name: "w1", Capacity: 3}},
		RemoteConfig{Backoff: fastBackoff},
	)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer p.Close()
	var cur [2]atomic.Int64
	var peak [2]atomic.Int64
	err = p.RunContext(context.Background(), 30, func(ctx context.Context, i int) error {
		w, _ := AssignedWorker(ctx)
		if c := cur[w].Add(1); c > peak[w].Load() {
			peak[w].Store(c)
		}
		time.Sleep(time.Millisecond)
		cur[w].Add(-1)
		return nil
	})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if peak[0].Load() > 1 {
		t.Errorf("worker 0 held %d tasks in flight, cap is 1", peak[0].Load())
	}
	if peak[1].Load() > 3 {
		t.Errorf("worker 1 held %d tasks in flight, cap is 3", peak[1].Load())
	}
	if peak[1].Load() == 0 {
		t.Errorf("worker 1 never used")
	}
}

// TestRemoteEmptyFleetParksUntilJoin pins the elastic contract: an empty
// fleet is a valid starting state, a Run over it parks without burning
// attempts, and the first AddWorker wakes the scheduler and drains the
// queue.
func TestRemoteEmptyFleetParksUntilJoin(t *testing.T) {
	p, err := NewRemote(nil, RemoteConfig{Backoff: fastBackoff})
	if err != nil {
		t.Fatalf("NewRemote(empty): %v", err)
	}
	defer p.Close()
	if got := p.Workers(); got != 0 {
		t.Fatalf("empty fleet Workers() = %d, want 0", got)
	}
	const n = 6
	var solved atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- p.RunContext(context.Background(), n, func(ctx context.Context, i int) error {
			if _, ok := AssignedWorker(ctx); !ok {
				return errors.New("no assigned worker")
			}
			solved.Add(1)
			return nil
		})
	}()
	select {
	case err := <-done:
		t.Fatalf("Run over an empty fleet returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	p.AddWorker(RemoteSpec{Name: "late", Capacity: 2})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunContext after join: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("join did not wake the parked scheduler")
	}
	if solved.Load() != n {
		t.Errorf("solved %d of %d items after join", solved.Load(), n)
	}
}

// TestRemoteEmptyFleetRunHonorsCancel: parking on an empty fleet must
// still abort on cancellation, reporting context.Canceled with every
// task skipped.
func TestRemoteEmptyFleetRunHonorsCancel(t *testing.T) {
	p, err := NewRemote(nil, RemoteConfig{})
	if err != nil {
		t.Fatalf("NewRemote(empty): %v", err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- p.RunContext(ctx, 3, func(context.Context, int) error {
			return errors.New("must never run")
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("cancellation did not wake the parked scheduler")
	}
}

// TestRemoteJoinMidRunReceivesWork: a worker added while a Run is
// saturated picks up queued items (run under -race in CI, this is the
// membership-resize safety test).
func TestRemoteJoinMidRunReceivesWork(t *testing.T) {
	p, err := NewRemote([]RemoteSpec{{Name: "w0", Capacity: 1}}, RemoteConfig{Backoff: fastBackoff})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer p.Close()
	const n = 16
	var byWorker [2]atomic.Int64
	joined := make(chan struct{})
	var once sync.Once
	err = p.RunContext(context.Background(), n, func(ctx context.Context, i int) error {
		w, _ := AssignedWorker(ctx)
		once.Do(func() {
			// First dispatch is in flight on w0 with n-1 items queued:
			// grow the fleet under the live scheduler.
			p.AddWorker(RemoteSpec{Name: "w1", Capacity: 3})
			close(joined)
		})
		<-joined
		time.Sleep(time.Millisecond) // keep seats occupied so the queue spreads
		byWorker[w].Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if total := byWorker[0].Load() + byWorker[1].Load(); total != n {
		t.Fatalf("fleet ran %d of %d items", total, n)
	}
	if byWorker[1].Load() == 0 {
		t.Errorf("worker joined mid-run never received work: %v %v", byWorker[0].Load(), byWorker[1].Load())
	}
	if got := p.Workers(); got != 4 {
		t.Errorf("Workers() = %d after join, want 4", got)
	}
}

// TestRemoteRemoveMidRunRedirectsQueue: removing a worker mid-Run stops
// new dispatches to it; queued items flow to the remaining member even
// when their exclusion sets pointed the other way.
func TestRemoteRemoveMidRunRedirectsQueue(t *testing.T) {
	p, err := NewRemote(
		[]RemoteSpec{{Name: "w0", Capacity: 1}, {Name: "w1", Capacity: 1}},
		RemoteConfig{Backoff: fastBackoff},
	)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer p.Close()
	const n = 12
	var removed atomic.Bool
	var afterRemoval atomic.Int64
	err = p.RunContext(context.Background(), n, func(ctx context.Context, i int) error {
		w, _ := AssignedWorker(ctx)
		if removed.Load() && w == 0 {
			afterRemoval.Add(1)
		}
		if i == 0 {
			p.RemoveWorker("w0")
			removed.Store(true)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if got := afterRemoval.Load(); got != 0 {
		t.Errorf("%d dispatches landed on w0 after removal", got)
	}
	if got := p.Workers(); got != 1 {
		t.Errorf("Workers() = %d after removal, want 1", got)
	}
	if specs := p.Specs(); len(specs) != 1 || specs[0].Name != "w1" {
		t.Errorf("Specs() after removal = %+v, want just w1", specs)
	}
}

// TestRemoteStrikeEviction: crossing the EvictStrikes threshold removes
// the worker from the fleet and counts an eviction; re-registration
// revives it with clean health at the same index.
func TestRemoteStrikeEviction(t *testing.T) {
	p, err := NewRemote(
		[]RemoteSpec{{Name: "w0", Capacity: 2}},
		RemoteConfig{Backoff: fastBackoff, EvictStrikes: 3},
	)
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer p.Close()
	for i := 0; i < 2; i++ {
		if evicted := p.Strike("w0"); evicted {
			t.Fatalf("strike %d evicted below the threshold", i+1)
		}
	}
	if !p.Strike("w0") {
		t.Fatalf("threshold strike did not evict")
	}
	if got := p.Evictions(); got != 1 {
		t.Errorf("Evictions() = %d, want 1", got)
	}
	if got := p.Workers(); got != 0 {
		t.Errorf("Workers() = %d after eviction, want 0", got)
	}
	stats := p.Stats()
	if len(stats) != 1 || !stats[0].Removed {
		t.Fatalf("evicted worker not flagged Removed: %+v", stats)
	}
	// Strikes against an evicted worker are a no-op, not a second eviction.
	if p.Strike("w0") {
		t.Errorf("strike on an evicted worker evicted again")
	}
	if got := p.Evictions(); got != 1 {
		t.Errorf("Evictions() = %d after no-op strike, want 1", got)
	}
	// Rejoin: same index, clean slate.
	if w := p.AddWorker(RemoteSpec{Name: "w0", Capacity: 4}); w != 0 {
		t.Errorf("rejoin allocated index %d, want the reserved 0", w)
	}
	s := p.Stats()[0]
	if s.Removed || s.Strikes != 0 || s.BackingOff || s.Capacity != 4 {
		t.Errorf("rejoined worker state: %+v, want live with clean health and capacity 4", s)
	}
}

// TestRemoteSpecsReturnsCopy pins the bugfix: mutating the returned
// slice must not corrupt the pool's membership table.
func TestRemoteSpecsReturnsCopy(t *testing.T) {
	p := twoWorkerPool(t, RemoteConfig{})
	specs := p.Specs()
	specs[0].Name = "corrupted"
	specs[0].Capacity = 999
	if got := p.Specs()[0]; got.Name != "w0" || got.Capacity != 2 {
		t.Fatalf("Specs() exposed internal state: mutation leaked, got %+v", got)
	}
}

// TestRemoteReregisterRefreshesCapacity: AddWorker on a live member is
// an idempotent capacity refresh, not a duplicate.
func TestRemoteReregisterRefreshesCapacity(t *testing.T) {
	p := twoWorkerPool(t, RemoteConfig{})
	if w := p.AddWorker(RemoteSpec{Name: "w0", Capacity: 5}); w != 0 {
		t.Fatalf("re-register allocated index %d, want 0", w)
	}
	if got := p.Workers(); got != 7 {
		t.Errorf("Workers() = %d after capacity refresh, want 7 (5+2)", got)
	}
	if got := len(p.Specs()); got != 2 {
		t.Errorf("re-registration duplicated the worker: %d specs", got)
	}
}

func TestRemoteCancelAbortsQueuedRedispatch(t *testing.T) {
	// A task whose worker faulted sits on the retry queue; cancellation
	// must fail it with its last fault instead of waiting out backoffs.
	p, err := NewRemote([]RemoteSpec{{Name: "w0", Capacity: 1}}, RemoteConfig{
		Backoff: func(int) time.Duration { return time.Hour },
	})
	if err != nil {
		t.Fatalf("NewRemote: %v", err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var tries atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- p.RunContext(ctx, 1, func(ctx context.Context, i int) error {
			tries.Add(1)
			cancel() // cancel while the task is being (re-)queued
			return newFault(0)
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("RunContext succeeded despite permanent fault")
		}
		if !IsWorkerFault(err) && !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want the last fault or cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("RunContext hung: cancellation did not abort the backoff wait")
	}
	if tries.Load() != 1 {
		t.Errorf("task dispatched %d times after cancellation, want 1", tries.Load())
	}
}
