// Package pool provides the task-pool abstraction shared by every
// parallel layer of the system: branch-and-bound node expansion
// (internal/milp), batch solving (rentmin.SolverPool) and experiment
// sweeps (internal/experiments). It is a leaf package so all of them can
// depend on it.
//
// Two implementations exist behind the Pool interface: LocalPool runs
// tasks on a fixed set of in-process goroutines, RemotePool dispatches
// them across the capacity of a fleet of remote executors (rentmind
// worker daemons, in practice) with per-worker backoff and re-dispatch
// on worker faults. Both share the same contract: results land by task
// index, the lowest-index task error wins, and cancellation skips tasks
// that have not started.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Pool runs n independent index-addressed tasks with bounded
// concurrency. Implementations bound concurrency, they do not create it
// per call — the idiomatic replacement for ad-hoc
// `for w := 0; w < workers; w++ { go ... }` loops.
//
// The shared contract, which the conformance suite in conformance_test.go
// pins for every implementation:
//
//   - every task that runs is invoked exactly once per dispatch, and its
//     outcome is recorded under its own index — results are ordered by
//     index no matter which worker finished first;
//   - Run and RunContext return the error of the lowest-index failing
//     task, independent of the completion schedule;
//   - once the context is done, tasks that have not started are never
//     started; started tasks are awaited. If no task failed but at least
//     one was skipped, RunContext returns ctx.Err();
//   - a panicking task is isolated: it becomes a *PanicError instead of
//     crashing the pool (Do re-panics it at the call site).
type Pool interface {
	// Workers returns the pool's concurrency bound: goroutines for a
	// LocalPool, total fleet capacity for a RemotePool.
	Workers() int
	// Run executes fn(0) … fn(n-1) on the pool and waits for all of them.
	Run(n int, fn func(i int) error) error
	// RunContext is Run with cancellation. fn receives a context derived
	// from ctx; a RemotePool annotates it with the assigned worker (see
	// AssignedWorker), a LocalPool passes ctx through unchanged. Tasks
	// already running are not interrupted by RunContext itself — fn must
	// observe its context to stop early.
	RunContext(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error
	// Do executes task(0) … task(n-1) and waits: Run for tasks that
	// cannot fail. A panicking task re-panics in Do itself.
	Do(n int, task func(i int))
	// Close releases the pool's resources. The pool must not be used
	// after Close; pending Run calls complete first.
	Close()
}

// PanicError is a task panic converted into an error so one bad task
// cannot take down the pool's worker (or, for a RemotePool, the
// dispatcher). Do re-panics it; Run and RunContext return it.
type PanicError struct {
	// Index is the task that panicked.
	Index int
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: task %d panicked: %v", e.Index, e.Value)
}

// safeCall invokes fn(ctx, i), converting a panic into a *PanicError.
func safeCall(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// firstError returns the lowest-index non-nil error.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rethrowPanic re-panics a *PanicError returned by Run, for Do
// implementations: a panic in a fire-and-forget task should surface at
// the call site, not vanish.
func rethrowPanic(err error) {
	if pe, ok := err.(*PanicError); ok {
		panic(fmt.Sprintf("%v\n\ntask stack:\n%s", pe, pe.Stack))
	}
}

// LocalPool is the in-process Pool: a fixed set of worker goroutines,
// started once and reused across Run calls, so a long-lived service can
// keep one pool and push every incoming batch through it.
//
// Run must not be called from inside a pool task: a task waiting on its
// own pool can deadlock once every worker is occupied.
type LocalPool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup
}

var _ Pool = (*LocalPool)(nil)

// New starts a local pool with the given number of workers; zero or
// negative uses GOMAXPROCS. Close must be called to release the workers.
func New(workers int) *LocalPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &LocalPool{workers: workers, jobs: make(chan func())}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *LocalPool) Workers() int { return p.workers }

// Run executes fn(0) … fn(n-1) on the pool and waits for all of them. It
// returns the error of the lowest-index failing task (wrap errors inside
// fn to attach task context), independent of the completion schedule.
func (p *LocalPool) Run(n int, fn func(i int) error) error {
	return p.RunContext(context.Background(), n, func(_ context.Context, i int) error { return fn(i) })
}

// RunContext is Run with cancellation: once ctx is done, tasks that have
// not yet been handed to a worker are never started. RunContext waits for
// every started task, then returns the error of the lowest-index failing
// task; if no task failed but ctx cancellation skipped at least one task,
// it returns ctx.Err().
func (p *LocalPool) RunContext(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	started := 0
submit:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break submit
		default:
		}
		wg.Add(1)
		select {
		case p.jobs <- func() {
			defer wg.Done()
			errs[i] = safeCall(ctx, i, fn)
		}:
			started++
		case <-ctx.Done():
			wg.Done()
			break submit
		}
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return err
	}
	if started < n {
		return ctx.Err()
	}
	return nil
}

// Do executes task(0) … task(n-1) on the pool and waits for all of them:
// Run for tasks that cannot fail. A panicking task re-panics here.
func (p *LocalPool) Do(n int, task func(i int)) {
	rethrowPanic(p.Run(n, func(i int) error { task(i); return nil }))
}

// Close stops the workers after any queued tasks finish.
func (p *LocalPool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
