// Package pool provides the fixed-size worker pool shared by every
// parallel layer of the system: branch-and-bound node expansion
// (internal/milp), batch solving (rentmin.SolverPool) and experiment
// sweeps (internal/experiments). It is a leaf package so all of them can
// depend on it.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool for running many independent
// CPU-bound tasks concurrently. The worker goroutines are started once
// and reused across Run calls, so a long-lived service can keep one Pool
// and push every incoming batch through it.
//
// Pool bounds concurrency, it does not create it per call — the idiomatic
// replacement for ad-hoc `for w := 0; w < workers; w++ { go ... }` loops.
type Pool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup
}

// New starts a pool with the given number of workers; zero or
// negative uses GOMAXPROCS. Close must be called to release the workers.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, jobs: make(chan func())}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(0) … fn(n-1) on the pool and waits for all of them. It
// returns the error of the lowest-index failing task (wrap errors inside
// fn to attach task context), independent of the completion schedule.
// Run is safe for concurrent use, but must not be called from inside a
// pool task: a task waiting on its own pool can deadlock once every
// worker is occupied.
func (p *Pool) Run(n int, fn func(i int) error) error {
	return p.RunContext(context.Background(), n, fn)
}

// RunContext is Run with cancellation: once ctx is done, tasks that have
// not yet been handed to a worker are never started. Tasks already running
// are not interrupted by RunContext itself — fn must observe ctx on its
// own if it wants to stop early. RunContext waits for every started task,
// then returns the error of the lowest-index failing task; if no task
// failed but ctx cancellation skipped at least one task, it returns
// ctx.Err().
func (p *Pool) RunContext(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	started := 0
submit:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break submit
		default:
		}
		wg.Add(1)
		select {
		case p.jobs <- func() {
			defer wg.Done()
			errs[i] = fn(i)
		}:
			started++
		case <-ctx.Done():
			wg.Done()
			break submit
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if started < n {
		return ctx.Err()
	}
	return nil
}

// Do executes task(0) … task(n-1) on the pool and waits for all of them:
// Run for tasks that cannot fail.
func (p *Pool) Do(n int, task func(i int)) {
	_ = p.Run(n, func(i int) error { task(i); return nil })
}

// Close stops the workers after any queued tasks finish. The pool must
// not be used after Close; pending Run calls complete first.
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
