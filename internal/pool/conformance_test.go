package pool

// The Pool conformance suite: every implementation must honor the same
// contract (results land by index, lowest-index error wins, cancellation
// skips unstarted tasks, panics are isolated), so the serving layers can
// swap a LocalPool for a RemotePool without re-auditing their semantics.
// The RemotePool under test is httptest-backed: every task round-trips
// through a real HTTP server first, so the remote dispatch path is
// exercised with genuine network scheduling and cancellation noise.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

type taskFn = func(ctx context.Context, i int) error

// backend builds a fresh Pool and a decorator applied to every
// conformance task (the RemotePool backend inserts an HTTP hop).
type backend struct {
	make func(t *testing.T) (Pool, func(taskFn) taskFn)
}

func conformanceBackends() map[string]backend {
	return map[string]backend{
		"LocalPool": {make: func(t *testing.T) (Pool, func(taskFn) taskFn) {
			p := New(3)
			t.Cleanup(p.Close)
			return p, func(fn taskFn) taskFn { return fn }
		}},
		"RemotePool": {make: func(t *testing.T) (Pool, func(taskFn) taskFn) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(http.StatusOK)
			}))
			t.Cleanup(srv.Close)
			p, err := NewRemote(
				[]RemoteSpec{{Name: "a", Capacity: 2}, {Name: "b", Capacity: 1}},
				RemoteConfig{Backoff: func(int) time.Duration { return time.Millisecond }},
			)
			if err != nil {
				t.Fatalf("NewRemote: %v", err)
			}
			t.Cleanup(p.Close)
			hop := func(fn taskFn) taskFn {
				return func(ctx context.Context, i int) error {
					if _, ok := AssignedWorker(ctx); !ok {
						return errors.New("no worker assigned in remote task context")
					}
					req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
					if err != nil {
						return err
					}
					resp, err := srv.Client().Do(req)
					if err != nil {
						return err
					}
					resp.Body.Close()
					return fn(ctx, i)
				}
			}
			return p, hop
		}},
	}
}

func TestPoolConformance(t *testing.T) {
	for name, b := range conformanceBackends() {
		b := b
		t.Run(name, func(t *testing.T) {
			t.Run("ResultsLandByIndex", func(t *testing.T) {
				p, wrap := b.make(t)
				const n = 24
				out := make([]int64, n)
				var runs atomic.Int64
				err := p.RunContext(context.Background(), n, wrap(func(_ context.Context, i int) error {
					runs.Add(1)
					atomic.StoreInt64(&out[i], int64(i*i))
					return nil
				}))
				if err != nil {
					t.Fatalf("RunContext: %v", err)
				}
				if runs.Load() != n {
					t.Errorf("ran %d tasks, want %d", runs.Load(), n)
				}
				for i := range out {
					if got := atomic.LoadInt64(&out[i]); got != int64(i*i) {
						t.Errorf("out[%d] = %d, want %d", i, got, i*i)
					}
				}
			})

			t.Run("LowestIndexErrorWins", func(t *testing.T) {
				p, wrap := b.make(t)
				boom := errors.New("boom")
				err := p.RunContext(context.Background(), 20, wrap(func(_ context.Context, i int) error {
					if i%3 == 1 {
						return fmt.Errorf("task %d: %w", i, boom)
					}
					return nil
				}))
				if err == nil || !strings.Contains(err.Error(), "task 1:") {
					t.Errorf("err = %v, want task 1 (lowest failing index)", err)
				}
				if !errors.Is(err, boom) {
					t.Errorf("err does not unwrap to the task error")
				}
			})

			t.Run("PreCancelledSkipsEverything", func(t *testing.T) {
				p, wrap := b.make(t)
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				var ran atomic.Int64
				err := p.RunContext(ctx, 10, wrap(func(context.Context, int) error {
					ran.Add(1)
					return nil
				}))
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
				if ran.Load() != 0 {
					t.Errorf("%d tasks ran despite pre-cancelled context", ran.Load())
				}
			})

			t.Run("CancelMidwaySkipsUnstarted", func(t *testing.T) {
				p, wrap := b.make(t)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var ran atomic.Int64
				err := p.RunContext(ctx, 50, wrap(func(_ context.Context, i int) error {
					ran.Add(1)
					if i == 0 {
						cancel()
					}
					return nil
				}))
				// Either unstarted tasks were skipped (ctx.Err surfaces
				// directly) or an in-flight hop aborted with the
				// cancellation — both unwrap to context.Canceled.
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled in the chain", err)
				}
				if n := ran.Load(); n >= 50 || n < 1 {
					t.Errorf("ran %d of 50 tasks, want an early stop", n)
				}
			})

			t.Run("PanicIsolation", func(t *testing.T) {
				p, wrap := b.make(t)
				var ran atomic.Int64
				err := p.RunContext(context.Background(), 12, wrap(func(_ context.Context, i int) error {
					if i == 3 {
						panic("kaboom")
					}
					ran.Add(1)
					return nil
				}))
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("err = %v, want *PanicError", err)
				}
				if pe.Index != 3 {
					t.Errorf("PanicError.Index = %d, want 3", pe.Index)
				}
				if ran.Load() != 11 {
					t.Errorf("%d other tasks ran, want 11 (panic must not kill the pool)", ran.Load())
				}
			})

			t.Run("DoRepanics", func(t *testing.T) {
				p, _ := b.make(t)
				defer func() {
					if recover() == nil {
						t.Errorf("Do swallowed a task panic")
					}
				}()
				p.Do(4, func(i int) {
					if i == 2 {
						panic("kaboom")
					}
				})
			})

			t.Run("WorkersPositive", func(t *testing.T) {
				p, _ := b.make(t)
				if p.Workers() < 1 {
					t.Errorf("Workers() = %d, want >= 1", p.Workers())
				}
			})

			t.Run("ZeroTasks", func(t *testing.T) {
				p, wrap := b.make(t)
				if err := p.RunContext(context.Background(), 0, wrap(func(context.Context, int) error {
					return errors.New("never")
				})); err != nil {
					t.Errorf("RunContext(0) = %v", err)
				}
			})
		})
	}
}
