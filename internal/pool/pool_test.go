package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryTask(t *testing.T) {
	p := New(3)
	defer p.Close()
	var done [50]atomic.Bool
	if err := p.Run(len(done), func(i int) error {
		if done[i].Swap(true) {
			return fmt.Errorf("task %d ran twice", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Errorf("task %d never ran", i)
		}
	}
}

func TestPoolReturnsLowestIndexError(t *testing.T) {
	p := New(4)
	defer p.Close()
	boom := errors.New("boom")
	err := p.Run(20, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("task %d: %w", i, boom)
		}
		return nil
	})
	if err == nil || err.Error() != "task 1: boom" {
		t.Errorf("err = %v, want task 1 (lowest failing index)", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("err does not unwrap to the task error")
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 2
	p := New(workers)
	defer p.Close()
	var cur, peak atomic.Int64
	if err := p.Run(30, func(int) error {
		if c := cur.Add(1); c > peak.Load() {
			peak.Store(c)
		}
		runtime.Gosched()
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > workers {
		t.Errorf("observed %d concurrent tasks with %d workers", peak.Load(), workers)
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := New(0)
	defer p.Close()
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d, want %d", got, want)
	}
}

func TestPoolReusableAcrossRuns(t *testing.T) {
	p := New(2)
	defer p.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	// Two concurrent Run calls plus a sequential reuse.
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func() {
			defer wg.Done()
			_ = p.Run(10, func(int) error { total.Add(1); return nil })
		}()
	}
	wg.Wait()
	if err := p.Run(5, func(int) error { total.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 25 {
		t.Errorf("ran %d tasks, want 25", total.Load())
	}
}

func TestPoolZeroTasks(t *testing.T) {
	p := New(1)
	defer p.Close()
	if err := p.Run(0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("Run(0) = %v", err)
	}
}
