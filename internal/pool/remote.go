package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// RemoteSpec describes one remote executor behind a RemotePool: a name
// for errors and metrics (typically the worker's endpoint URL) and its
// capacity — the maximum number of tasks the pool keeps in flight on it
// at once, discovered from the worker itself (GET /v1/capacity for a
// rentmind daemon).
type RemoteSpec struct {
	Name     string
	Capacity int
}

// RemoteConfig tunes a RemotePool's failure handling.
type RemoteConfig struct {
	// Backoff returns how long a worker sits out after its strike-th
	// consecutive fault (strike counts from 1). Nil uses a deterministic
	// exponential default: 100ms · 2^(strike-1), capped at 5s. Callers
	// that want jitter inject it here (rentmin/client.Backoff supplies a
	// seeded, jittered schedule so tests stay deterministic).
	Backoff func(strike int) time.Duration
	// MaxAttempts bounds how many dispatches one task may consume before
	// its last worker fault is reported as the task's error (so a fleet
	// that is entirely down cannot spin forever). Zero means
	// 3·(current active workers), at least 4, re-evaluated per fault so
	// the budget tracks an elastic fleet.
	MaxAttempts int
	// EvictStrikes, when positive, is the consecutive-strike threshold at
	// which a worker is evicted from the fleet (removed exactly as
	// RemoveWorker would, counted in Evictions). Zero disables eviction:
	// a faulting worker only backs off, as in a fixed fleet. An evicted
	// worker may rejoin via AddWorker — registration revives it with a
	// clean slate.
	EvictStrikes int
}

// RemoteWorkerStats is a point-in-time snapshot of one worker's health
// inside a RemotePool, exported as the coordinator's worker gauges.
type RemoteWorkerStats struct {
	Name     string
	Capacity int
	// InFlight counts tasks currently dispatched to the worker.
	InFlight int
	// Dispatched counts tasks ever handed to the worker (re-dispatches
	// of the same item count once per attempt).
	Dispatched int64
	// Succeeded counts dispatches that returned without a worker fault.
	Succeeded int64
	// Faults counts dispatches that ended in a worker fault.
	Faults int64
	// Strikes is the current consecutive-fault count (reset by any
	// success); BackingOff reports whether the worker is sitting out.
	Strikes    int
	BackingOff bool
	// Removed reports the worker has left the fleet (RemoveWorker or
	// strike eviction); it receives no new dispatches but its counters
	// are kept so a rejoin resumes them.
	Removed bool
}

// workerFaulter is the contract a task error uses to indict the worker
// it ran on rather than the task itself: the task is re-dispatched to
// another worker and the faulted worker backs off. rentmin wraps remote
// solve failures in such an error (rentmin.WorkerFaultError); the pool
// only cares about the method so it stays transport-agnostic.
type workerFaulter interface{ WorkerFault() bool }

// IsWorkerFault reports whether err marks a worker fault (an error in
// its chain implements WorkerFault() bool and returns true).
func IsWorkerFault(err error) bool {
	var f workerFaulter
	return errors.As(err, &f) && f.WorkerFault()
}

// workerKey carries the assigned worker index in the task context.
type workerKey struct{}

// AssignedWorker returns the index (into the RemoteSpec slice) of the
// worker a RemotePool bound the current task to, and whether the task is
// running under a RemotePool at all. Task functions use it to route
// their work to the right remote executor. Indexes are stable for the
// pool's lifetime: membership changes append or tombstone, they never
// renumber.
func AssignedWorker(ctx context.Context) (int, bool) {
	w, ok := ctx.Value(workerKey{}).(int)
	return w, ok
}

// RemotePool is a Pool whose concurrency slots are the capacity of a
// fleet of remote executors. It does not ship closures anywhere: it
// decides which worker a task index is bound to and when, and the task
// function routes its work to that worker (AssignedWorker). What the
// pool owns is everything around that decision:
//
//   - per-worker in-flight caps (a worker never holds more tasks than
//     its discovered capacity);
//   - deterministic result ordering — outcomes land by task index no
//     matter which worker answered, exactly like LocalPool;
//   - failure handling: a task error marking a worker fault (see
//     IsWorkerFault) puts the task back on the queue for a healthy
//     worker and gives the faulted worker an exponential backoff, so a
//     dead worker degrades throughput, not correctness;
//   - elastic membership: AddWorker and RemoveWorker change the fleet
//     mid-flight — schedulers blocked on a saturated (or empty) fleet
//     wake and dispatch onto a joining worker, and a removed worker's
//     queued items flow to the rest of the fleet. With
//     RemoteConfig.EvictStrikes set, removal also happens automatically
//     when a worker's consecutive strikes cross the threshold;
//   - cancellation: queued tasks are never dispatched after ctx is
//     done, and in-flight tasks see the cancellation through their
//     context (a remote HTTP solve aborts mid-flight).
//
// Worker health (strikes, backoff deadlines) persists across Run calls,
// so a long-lived coordinator keeps avoiding a flapping worker between
// batches. Concurrent Run calls share the fleet's capacity. A pool may
// be built over an empty fleet: Run calls then park until a worker
// joins or their context is cancelled.
type RemotePool struct {
	backoff      func(strike int) time.Duration
	maxAttempts  int
	evictStrikes int

	mu         sync.Mutex
	specs      []RemoteSpec
	removed    []bool
	free       []int // free seats per worker
	strikes    []int
	until      []time.Time // backoff deadline per worker
	inFlight   []int
	dispatched []int64
	succeeded  []int64
	faults     []int64
	evictions  int64

	// waiters are the schedulers currently starved of seats: one
	// buffered-1 channel per waiting Run call, signalled (never blocked
	// on) whenever a seat frees or the membership changes. Per-waiter
	// channels make the wakeup lossless — the single shared token this
	// replaced could drop signals under concurrent Runs and needed a
	// 50ms poll as a lost-wakeup net.
	waiters []chan struct{}
}

var _ Pool = (*RemotePool)(nil)

// NewRemote builds a RemotePool over the given workers. Capacities below
// one are clamped to one. The fleet may be empty: an elastic pool starts
// with no members and grows by AddWorker.
func NewRemote(specs []RemoteSpec, cfg RemoteConfig) (*RemotePool, error) {
	p := &RemotePool{
		backoff:      cfg.Backoff,
		maxAttempts:  cfg.MaxAttempts,
		evictStrikes: cfg.EvictStrikes,
	}
	if p.backoff == nil {
		p.backoff = defaultBackoff
	}
	for _, s := range specs {
		p.AddWorker(s)
	}
	return p, nil
}

// defaultBackoff is the deterministic exponential schedule used when the
// config supplies none: 100ms, 200ms, 400ms, ... capped at 5s.
func defaultBackoff(strike int) time.Duration {
	d := 100 * time.Millisecond
	for ; strike > 1 && d < 5*time.Second; strike-- {
		d *= 2
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// AddWorker adds a worker to the fleet (or revives/refreshes it) and
// returns its stable index. Joining under a live Run is the point:
// schedulers starved of seats wake immediately and dispatch queued items
// onto the new member.
//
//   - A brand-new name appends a member.
//   - A removed (evicted) name rejoins in place: same index, counters
//     continued, strikes and backoff cleared.
//   - A live name is refreshed idempotently: its capacity is updated to
//     the given value (seats grow or shrink accordingly).
func (p *RemotePool) AddWorker(spec RemoteSpec) int {
	if spec.Capacity < 1 {
		spec.Capacity = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := range p.specs {
		if p.specs[w].Name != spec.Name {
			continue
		}
		if p.removed[w] {
			// Rejoin after removal/eviction: clean health, fresh seats
			// (minus any dispatches still draining from before removal).
			p.removed[w] = false
			p.strikes[w] = 0
			p.until[w] = time.Time{}
			p.specs[w].Capacity = spec.Capacity
			p.free[w] = spec.Capacity - p.inFlight[w]
		} else {
			// Idempotent re-registration: refresh the capacity.
			p.free[w] += spec.Capacity - p.specs[w].Capacity
			p.specs[w].Capacity = spec.Capacity
		}
		p.broadcastLocked()
		return w
	}
	p.specs = append(p.specs, spec)
	p.removed = append(p.removed, false)
	p.free = append(p.free, spec.Capacity)
	p.strikes = append(p.strikes, 0)
	p.until = append(p.until, time.Time{})
	p.inFlight = append(p.inFlight, 0)
	p.dispatched = append(p.dispatched, 0)
	p.succeeded = append(p.succeeded, 0)
	p.faults = append(p.faults, 0)
	p.broadcastLocked()
	return len(p.specs) - 1
}

// RemoveWorker takes the named worker out of the fleet; it reports
// whether a live member was removed. The worker gets no new dispatches;
// its in-flight tasks finish (or fault and re-dispatch) normally, and
// queued items excluded from every remaining member have their
// exclusion sets reset so they keep flowing. The index stays reserved —
// AddWorker with the same name rejoins in place.
func (p *RemotePool) RemoveWorker(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := range p.specs {
		if p.specs[w].Name == name && !p.removed[w] {
			p.removed[w] = true
			p.broadcastLocked()
			return true
		}
	}
	return false
}

// Strike records a health-probe failure against the named worker: a
// strike plus backoff exactly as a dispatch fault would add, without
// touching the dispatch counters (a probe is not a dispatch). It
// reports whether the strike crossed the eviction threshold and removed
// the worker. Unknown or already-removed names are a no-op.
func (p *RemotePool) Strike(name string) (evicted bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := range p.specs {
		if p.specs[w].Name == name && !p.removed[w] {
			return p.strikeLocked(w)
		}
	}
	return false
}

// strikeLocked adds a strike and backoff to worker w, evicting it when
// the configured threshold is crossed. Caller holds mu.
func (p *RemotePool) strikeLocked(w int) (evicted bool) {
	p.strikes[w]++
	p.until[w] = time.Now().Add(p.backoff(p.strikes[w]))
	if p.evictStrikes > 0 && p.strikes[w] >= p.evictStrikes {
		p.removed[w] = true
		p.evictions++
		p.broadcastLocked()
		return true
	}
	return false
}

// Evictions counts workers removed by the strike threshold since the
// pool was created (manual RemoveWorker calls are not counted).
func (p *RemotePool) Evictions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// Workers returns the fleet's current total capacity (active members
// only). It changes as workers join and leave.
func (p *RemotePool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for w := range p.specs {
		if !p.removed[w] {
			total += p.specs[w].Capacity
		}
	}
	return total
}

// Specs returns a snapshot of the fleet's active members. The slice is
// a copy: mutating it cannot corrupt the pool's membership table.
func (p *RemotePool) Specs() []RemoteSpec {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]RemoteSpec, 0, len(p.specs))
	for w := range p.specs {
		if !p.removed[w] {
			out = append(out, p.specs[w])
		}
	}
	return out
}

// Stats snapshots per-worker health for metrics export. Removed members
// are included (flagged Removed) so dashboards can count evictions and
// a coordinator can report a vanished worker's final counters.
func (p *RemotePool) Stats() []RemoteWorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	out := make([]RemoteWorkerStats, len(p.specs))
	for i, s := range p.specs {
		out[i] = RemoteWorkerStats{
			Name:       s.Name,
			Capacity:   s.Capacity,
			InFlight:   p.inFlight[i],
			Dispatched: p.dispatched[i],
			Succeeded:  p.succeeded[i],
			Faults:     p.faults[i],
			Strikes:    p.strikes[i],
			BackingOff: p.until[i].After(now),
			Removed:    p.removed[i],
		}
	}
	return out
}

// Close releases the pool. RemotePool owns no goroutines between Run
// calls, so Close only exists to satisfy the Pool contract; the remote
// workers themselves are owned by whoever created their clients.
func (p *RemotePool) Close() {}

// Run executes fn(0) … fn(n-1) across the fleet and waits; see Pool.
func (p *RemotePool) Run(n int, fn func(i int) error) error {
	return p.RunContext(context.Background(), n, func(_ context.Context, i int) error { return fn(i) })
}

// Do executes task(0) … task(n-1) across the fleet and waits; a
// panicking task re-panics here.
func (p *RemotePool) Do(n int, task func(i int)) {
	rethrowPanic(p.Run(n, func(i int) error { task(i); return nil }))
}

// subscribe registers the calling scheduler for seat/membership wakeups
// and returns its private buffered-1 channel. Register before scanning
// for seats: a release landing between the scan and the sleep is then
// buffered, not lost.
func (p *RemotePool) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	p.mu.Lock()
	p.waiters = append(p.waiters, ch)
	p.mu.Unlock()
	return ch
}

// unsubscribe removes the scheduler's wakeup channel.
func (p *RemotePool) unsubscribe(ch chan struct{}) {
	p.mu.Lock()
	for i := range p.waiters {
		if p.waiters[i] == ch {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// broadcastLocked signals every waiting scheduler (non-blocking: each
// waiter channel holds one pending token). Caller holds mu.
func (p *RemotePool) broadcastLocked() {
	for _, ch := range p.waiters {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// pickAssignment scans the queue in FIFO order for the first item with a
// dispatchable worker: active membership, a free seat, no running
// backoff, and not excluded by the item's own fault history (an item
// never returns to a worker it already faulted on while alternatives
// exist — backoff-expiry probes of a dead worker must not burn the same
// item's attempt budget over and over). Among eligible workers it
// reserves a seat on the one with the most free seats (ties to the
// lowest index), which spreads a batch across the fleet instead of
// filling workers one by one. An item whose exclusion set has come to
// cover every active member — membership shrank under it — has the set
// reset so it keeps flowing. It returns the queue position and worker,
// or (-1, -1) and the wait until the nearest backoff expiry among
// workers with free seats (zero when no backoff is pending and the
// caller must wait for a seat or a membership change instead).
func (p *RemotePool) pickAssignment(now time.Time, queue []item) (int, int, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for qi := 0; qi < len(queue); qi++ {
		best := -1
		active, eligible := 0, 0
		for w := range p.specs {
			if p.removed[w] {
				continue
			}
			active++
			if queue[qi].excludes(w) {
				continue
			}
			eligible++
			if p.free[w] <= 0 || p.until[w].After(now) {
				continue
			}
			if best < 0 || p.free[w] > p.free[best] {
				best = w
			}
		}
		if best >= 0 {
			p.free[best]--
			p.inFlight[best]++
			p.dispatched[best]++
			return qi, best, 0
		}
		if active > 0 && eligible == 0 {
			// Every worker this item hasn't faulted on has since left the
			// fleet. Clear the history so the item may probe the members
			// that remain (still bounded by its attempt budget) and rescan.
			queue[qi].excluded = nil
			qi--
		}
	}
	// Nothing dispatchable: report the nearest backoff expiry among
	// active workers that do have a free seat, so the scheduler can sleep
	// until the fleet heals rather than only until a seat frees.
	var wait time.Duration
	for w := range p.specs {
		if p.removed[w] || p.free[w] <= 0 {
			continue
		}
		if d := p.until[w].Sub(now); d > 0 && (wait == 0 || d < wait) {
			wait = d
		}
	}
	return -1, -1, wait
}

// release frees the worker's seat and wakes every waiting scheduler.
func (p *RemotePool) release(w int) {
	p.mu.Lock()
	p.free[w]++
	p.inFlight[w]--
	p.broadcastLocked()
	p.mu.Unlock()
}

// recordSuccess clears the worker's strike count.
func (p *RemotePool) recordSuccess(w int) {
	p.mu.Lock()
	p.succeeded[w]++
	p.strikes[w] = 0
	p.mu.Unlock()
}

// recordFault adds a strike and schedules the worker's backoff; with
// eviction configured, the threshold strike removes the worker.
func (p *RemotePool) recordFault(w int) {
	p.mu.Lock()
	p.faults[w]++
	p.strikeLocked(w)
	p.mu.Unlock()
}

// attemptBudget resolves the per-item dispatch budget against the
// current fleet size (for the dynamic zero default).
func (p *RemotePool) attemptBudget() int {
	if p.maxAttempts > 0 {
		return p.maxAttempts
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	active := 0
	for w := range p.specs {
		if !p.removed[w] {
			active++
		}
	}
	budget := 3 * active
	if budget < 4 {
		budget = 4
	}
	return budget
}

// item is one task making its way through the dispatcher, carrying its
// re-dispatch history.
type item struct {
	i        int
	attempts int
	lastErr  error
	// excluded marks workers this item already faulted on; nil until the
	// first fault. It is sized to the fleet at fault time and treats
	// later-joined indexes as not excluded. When every active worker is
	// excluded the set resets — at fault time or, if membership shrank
	// under a queued item, during assignment — so the item may probe the
	// fleet again (bounded by the attempt budget).
	excluded []bool
}

func (it *item) excludes(w int) bool {
	return w < len(it.excluded) && it.excluded[w]
}

// excludeWorker marks the worker in the item's fault history, resetting
// the set when it has come to cover every active member.
func (p *RemotePool) excludeWorker(it *item, w int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(it.excluded) < len(p.specs) {
		grown := make([]bool, len(p.specs))
		copy(grown, it.excluded)
		it.excluded = grown
	}
	it.excluded[w] = true
	for x := range p.specs {
		if !p.removed[x] && !it.excluded[x] {
			return
		}
	}
	it.excluded = nil
}

// completion is what a finished dispatch reports back to the scheduler.
type completion struct {
	it  item
	w   int
	err error
}

// RunContext dispatches fn(0) … fn(n-1) across the fleet; see Pool and
// the RemotePool type comment for the contract. Each invocation of fn
// receives a context annotated with its assigned worker (AssignedWorker).
// A task whose error marks a worker fault is re-dispatched — up to
// MaxAttempts dispatches, after which its last fault stands as its
// error. Tasks cancelled after at least one faulted attempt report that
// last fault rather than ctx.Err().
func (p *RemotePool) RunContext(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	queue := make([]item, n)
	for i := range queue {
		queue[i] = item{i: i}
	}
	skipped := 0
	inflight := 0
	done := make(chan completion)
	cancelled := false

	for {
		if !cancelled && ctx.Err() != nil {
			// Stop dispatching: queued first-attempt tasks are skipped,
			// queued re-dispatches keep their last fault as their error.
			cancelled = true
			for _, it := range queue {
				if it.attempts == 0 {
					skipped++
				} else {
					errs[it.i] = it.lastErr
				}
			}
			queue = nil
		}
		if len(queue) == 0 && inflight == 0 {
			break
		}

		var healWait time.Duration
		var wake chan struct{}
		if len(queue) > 0 {
			// Subscribe before scanning: a seat released (or a worker
			// joining) between the scan and the sleep lands in the
			// buffered waiter channel instead of being lost.
			wake = p.subscribe()
			qi, w, wait := p.pickAssignment(time.Now(), queue)
			if w >= 0 {
				p.unsubscribe(wake)
				it := queue[qi]
				queue = append(queue[:qi], queue[qi+1:]...)
				it.attempts++
				inflight++
				go func(it item, w int) {
					err := safeCall(context.WithValue(ctx, workerKey{}, w), it.i, fn)
					switch {
					case err == nil:
						p.recordSuccess(w)
					case ctx.Err() != nil:
						// A cancellation-time failure says nothing about
						// the worker's health; don't poison its record.
					case IsWorkerFault(err):
						p.recordFault(w)
					default:
						p.recordSuccess(w) // the task failed, the worker answered
					}
					p.release(w)
					done <- completion{it: it, w: w, err: err}
				}(it, w)
				continue
			}
			healWait = wait
		}

		// Nothing dispatchable: wait for one of our dispatches to finish,
		// any seat in the fleet to free or the membership to change (the
		// wakeup may come from a concurrent Run's release or from
		// AddWorker), the nearest backoff to expire, or cancellation.
		var timerC <-chan time.Time
		var timer *time.Timer
		if healWait > 0 {
			timer = time.NewTimer(healWait)
			timerC = timer.C
		}
		var ctxDone <-chan struct{}
		if !cancelled {
			ctxDone = ctx.Done()
		}
		select {
		case c := <-done:
			inflight--
			p.settle(ctx, c, &queue, errs)
		case <-wake:
		case <-timerC:
		case <-ctxDone:
		}
		if timer != nil {
			timer.Stop()
		}
		if wake != nil {
			p.unsubscribe(wake)
		}
	}

	if err := firstError(errs); err != nil {
		return err
	}
	if skipped > 0 {
		return ctx.Err()
	}
	return nil
}

// settle folds one completed dispatch into the run's state: success
// lands the result, a worker fault re-queues the task for a worker it
// has not faulted on yet (until its attempt budget runs out), any other
// error is the task's own.
func (p *RemotePool) settle(ctx context.Context, c completion, queue *[]item, errs []error) {
	switch {
	case c.err == nil:
		errs[c.it.i] = nil
	case IsWorkerFault(c.err) && ctx.Err() == nil && c.it.attempts < p.attemptBudget():
		c.it.lastErr = c.err
		p.excludeWorker(&c.it, c.w)
		*queue = append(*queue, c.it)
	case IsWorkerFault(c.err):
		errs[c.it.i] = fmt.Errorf("pool: task %d failed on %d dispatches, giving up: %w", c.it.i, c.it.attempts, c.err)
	default:
		errs[c.it.i] = c.err
	}
}
