package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// RemoteSpec describes one remote executor behind a RemotePool: a name
// for errors and metrics (typically the worker's endpoint URL) and its
// capacity — the maximum number of tasks the pool keeps in flight on it
// at once, discovered from the worker itself (GET /v1/capacity for a
// rentmind daemon).
type RemoteSpec struct {
	Name     string
	Capacity int
}

// RemoteConfig tunes a RemotePool's failure handling.
type RemoteConfig struct {
	// Backoff returns how long a worker sits out after its strike-th
	// consecutive fault (strike counts from 1). Nil uses a deterministic
	// exponential default: 100ms · 2^(strike-1), capped at 5s. Callers
	// that want jitter inject it here (rentmin/client.Backoff supplies a
	// seeded, jittered schedule so tests stay deterministic).
	Backoff func(strike int) time.Duration
	// MaxAttempts bounds how many dispatches one task may consume before
	// its last worker fault is reported as the task's error (so a fleet
	// that is entirely down cannot spin forever). Zero means
	// 3·len(workers), at least 4.
	MaxAttempts int
}

// RemoteWorkerStats is a point-in-time snapshot of one worker's health
// inside a RemotePool, exported as the coordinator's worker gauges.
type RemoteWorkerStats struct {
	Name     string
	Capacity int
	// InFlight counts tasks currently dispatched to the worker.
	InFlight int
	// Dispatched counts tasks ever handed to the worker (re-dispatches
	// of the same item count once per attempt).
	Dispatched int64
	// Succeeded counts dispatches that returned without a worker fault.
	Succeeded int64
	// Faults counts dispatches that ended in a worker fault.
	Faults int64
	// Strikes is the current consecutive-fault count (reset by any
	// success); BackingOff reports whether the worker is sitting out.
	Strikes    int
	BackingOff bool
}

// workerFaulter is the contract a task error uses to indict the worker
// it ran on rather than the task itself: the task is re-dispatched to
// another worker and the faulted worker backs off. rentmin wraps remote
// solve failures in such an error (rentmin.WorkerFaultError); the pool
// only cares about the method so it stays transport-agnostic.
type workerFaulter interface{ WorkerFault() bool }

// IsWorkerFault reports whether err marks a worker fault (an error in
// its chain implements WorkerFault() bool and returns true).
func IsWorkerFault(err error) bool {
	var f workerFaulter
	return errors.As(err, &f) && f.WorkerFault()
}

// workerKey carries the assigned worker index in the task context.
type workerKey struct{}

// AssignedWorker returns the index (into the RemoteSpec slice) of the
// worker a RemotePool bound the current task to, and whether the task is
// running under a RemotePool at all. Task functions use it to route
// their work to the right remote executor.
func AssignedWorker(ctx context.Context) (int, bool) {
	w, ok := ctx.Value(workerKey{}).(int)
	return w, ok
}

// RemotePool is a Pool whose concurrency slots are the capacity of a
// fleet of remote executors. It does not ship closures anywhere: it
// decides which worker a task index is bound to and when, and the task
// function routes its work to that worker (AssignedWorker). What the
// pool owns is everything around that decision:
//
//   - per-worker in-flight caps (a worker never holds more tasks than
//     its discovered capacity);
//   - deterministic result ordering — outcomes land by task index no
//     matter which worker answered, exactly like LocalPool;
//   - failure handling: a task error marking a worker fault (see
//     IsWorkerFault) puts the task back on the queue for a healthy
//     worker and gives the faulted worker an exponential backoff, so a
//     dead worker degrades throughput, not correctness;
//   - cancellation: queued tasks are never dispatched after ctx is
//     done, and in-flight tasks see the cancellation through their
//     context (a remote HTTP solve aborts mid-flight).
//
// Worker health (strikes, backoff deadlines) persists across Run calls,
// so a long-lived coordinator keeps avoiding a flapping worker between
// batches. Concurrent Run calls share the fleet's capacity.
type RemotePool struct {
	specs       []RemoteSpec
	backoff     func(strike int) time.Duration
	maxAttempts int
	capacity    int

	mu         sync.Mutex
	free       []int // free seats per worker
	strikes    []int
	until      []time.Time // backoff deadline per worker
	inFlight   []int
	dispatched []int64
	succeeded  []int64
	faults     []int64

	// freed is a best-effort wakeup shared by concurrent Run calls: a
	// scheduler starved of seats by another Run's tasks sleeps on it and
	// re-checks the fleet when any seat frees anywhere.
	freed chan struct{}
}

var _ Pool = (*RemotePool)(nil)

// NewRemote builds a RemotePool over the given workers. Capacities below
// one are clamped to one; an empty fleet is an error.
func NewRemote(specs []RemoteSpec, cfg RemoteConfig) (*RemotePool, error) {
	if len(specs) == 0 {
		return nil, errors.New("pool: remote pool needs at least one worker")
	}
	p := &RemotePool{
		specs:       make([]RemoteSpec, len(specs)),
		backoff:     cfg.Backoff,
		maxAttempts: cfg.MaxAttempts,
		free:        make([]int, len(specs)),
		strikes:     make([]int, len(specs)),
		until:       make([]time.Time, len(specs)),
		inFlight:    make([]int, len(specs)),
		dispatched:  make([]int64, len(specs)),
		succeeded:   make([]int64, len(specs)),
		faults:      make([]int64, len(specs)),
		freed:       make(chan struct{}, 1),
	}
	for i, s := range specs {
		if s.Capacity < 1 {
			s.Capacity = 1
		}
		p.specs[i] = s
		p.free[i] = s.Capacity
		p.capacity += s.Capacity
	}
	if p.backoff == nil {
		p.backoff = defaultBackoff
	}
	if p.maxAttempts <= 0 {
		p.maxAttempts = 3 * len(specs)
		if p.maxAttempts < 4 {
			p.maxAttempts = 4
		}
	}
	return p, nil
}

// seatPollInterval bounds how long a scheduler with queued tasks sleeps
// between fleet re-checks: the lost-wakeup fallback for the shared
// best-effort freed signal. 50ms is invisible next to remote solve times
// while keeping a fleet-wide poll rate of a few dozen scans per second
// even with many concurrent Runs waiting.
const seatPollInterval = 50 * time.Millisecond

// defaultBackoff is the deterministic exponential schedule used when the
// config supplies none: 100ms, 200ms, 400ms, ... capped at 5s.
func defaultBackoff(strike int) time.Duration {
	d := 100 * time.Millisecond
	for ; strike > 1 && d < 5*time.Second; strike-- {
		d *= 2
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// Workers returns the fleet's total capacity.
func (p *RemotePool) Workers() int { return p.capacity }

// Specs returns the fleet description the pool was built with.
func (p *RemotePool) Specs() []RemoteSpec { return p.specs }

// Stats snapshots per-worker health for metrics export.
func (p *RemotePool) Stats() []RemoteWorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	out := make([]RemoteWorkerStats, len(p.specs))
	for i, s := range p.specs {
		out[i] = RemoteWorkerStats{
			Name:       s.Name,
			Capacity:   s.Capacity,
			InFlight:   p.inFlight[i],
			Dispatched: p.dispatched[i],
			Succeeded:  p.succeeded[i],
			Faults:     p.faults[i],
			Strikes:    p.strikes[i],
			BackingOff: p.until[i].After(now),
		}
	}
	return out
}

// Close releases the pool. RemotePool owns no goroutines between Run
// calls, so Close only exists to satisfy the Pool contract; the remote
// workers themselves are owned by whoever created their clients.
func (p *RemotePool) Close() {}

// Run executes fn(0) … fn(n-1) across the fleet and waits; see Pool.
func (p *RemotePool) Run(n int, fn func(i int) error) error {
	return p.RunContext(context.Background(), n, func(_ context.Context, i int) error { return fn(i) })
}

// Do executes task(0) … task(n-1) across the fleet and waits; a
// panicking task re-panics here.
func (p *RemotePool) Do(n int, task func(i int)) {
	rethrowPanic(p.Run(n, func(i int) error { task(i); return nil }))
}

// pickAssignment scans the queue in FIFO order for the first item with a
// dispatchable worker: a free seat, no active backoff, and not excluded
// by the item's own fault history (an item never returns to a worker it
// already faulted on while alternatives exist — backoff-expiry probes of
// a dead worker must not burn the same item's attempt budget over and
// over). Among eligible workers it reserves a seat on the one with the
// most free seats (ties to the lowest index), which spreads a batch
// across the fleet instead of filling workers one by one. It returns the
// queue position and worker, or (-1, -1) and the wait until the nearest
// backoff expiry among workers with free seats (zero when no backoff is
// pending and the caller must wait for a seat instead).
func (p *RemotePool) pickAssignment(now time.Time, queue []item) (int, int, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for qi := range queue {
		best := -1
		for w := range p.specs {
			if p.free[w] <= 0 || p.until[w].After(now) || queue[qi].excludes(w) {
				continue
			}
			if best < 0 || p.free[w] > p.free[best] {
				best = w
			}
		}
		if best >= 0 {
			p.free[best]--
			p.inFlight[best]++
			p.dispatched[best]++
			return qi, best, 0
		}
	}
	// Nothing dispatchable: report the nearest backoff expiry among
	// workers that do have a free seat, so the scheduler can sleep until
	// the fleet heals rather than only until a seat frees.
	var wait time.Duration
	for w := range p.specs {
		if p.free[w] <= 0 {
			continue
		}
		if d := p.until[w].Sub(now); d > 0 && (wait == 0 || d < wait) {
			wait = d
		}
	}
	return -1, -1, wait
}

// release frees the worker's seat and signals anyone waiting for one.
func (p *RemotePool) release(w int) {
	p.mu.Lock()
	p.free[w]++
	p.inFlight[w]--
	p.mu.Unlock()
	select {
	case p.freed <- struct{}{}:
	default:
	}
}

// recordSuccess clears the worker's strike count.
func (p *RemotePool) recordSuccess(w int) {
	p.mu.Lock()
	p.succeeded[w]++
	p.strikes[w] = 0
	p.mu.Unlock()
}

// recordFault adds a strike and schedules the worker's backoff.
func (p *RemotePool) recordFault(w int) {
	p.mu.Lock()
	p.faults[w]++
	p.strikes[w]++
	p.until[w] = time.Now().Add(p.backoff(p.strikes[w]))
	p.mu.Unlock()
}

// item is one task making its way through the dispatcher, carrying its
// re-dispatch history.
type item struct {
	i        int
	attempts int
	lastErr  error
	// excluded marks workers this item already faulted on; nil until the
	// first fault. When every worker is excluded the set resets, so the
	// item may probe the fleet again (bounded by MaxAttempts).
	excluded []bool
}

func (it *item) excludes(w int) bool {
	return it.excluded != nil && it.excluded[w]
}

// exclude marks the worker; it reports false when that was the last
// non-excluded worker (caller resets the set).
func (it *item) exclude(w, workers int) bool {
	if it.excluded == nil {
		it.excluded = make([]bool, workers)
	}
	it.excluded[w] = true
	for _, x := range it.excluded {
		if !x {
			return true
		}
	}
	return false
}

// completion is what a finished dispatch reports back to the scheduler.
type completion struct {
	it  item
	w   int
	err error
}

// RunContext dispatches fn(0) … fn(n-1) across the fleet; see Pool and
// the RemotePool type comment for the contract. Each invocation of fn
// receives a context annotated with its assigned worker (AssignedWorker).
// A task whose error marks a worker fault is re-dispatched — up to
// MaxAttempts dispatches, after which its last fault stands as its
// error. Tasks cancelled after at least one faulted attempt report that
// last fault rather than ctx.Err().
func (p *RemotePool) RunContext(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	queue := make([]item, n)
	for i := range queue {
		queue[i] = item{i: i}
	}
	skipped := 0
	inflight := 0
	done := make(chan completion)
	cancelled := false

	for {
		if !cancelled && ctx.Err() != nil {
			// Stop dispatching: queued first-attempt tasks are skipped,
			// queued re-dispatches keep their last fault as their error.
			cancelled = true
			for _, it := range queue {
				if it.attempts == 0 {
					skipped++
				} else {
					errs[it.i] = it.lastErr
				}
			}
			queue = nil
		}
		if len(queue) == 0 && inflight == 0 {
			break
		}

		var healWait time.Duration
		if len(queue) > 0 {
			qi, w, wait := p.pickAssignment(time.Now(), queue)
			if w >= 0 {
				it := queue[qi]
				queue = append(queue[:qi], queue[qi+1:]...)
				it.attempts++
				inflight++
				go func(it item, w int) {
					err := safeCall(context.WithValue(ctx, workerKey{}, w), it.i, fn)
					switch {
					case err == nil:
						p.recordSuccess(w)
					case ctx.Err() != nil:
						// A cancellation-time failure says nothing about
						// the worker's health; don't poison its record.
					case IsWorkerFault(err):
						p.recordFault(w)
					default:
						p.recordSuccess(w) // the task failed, the worker answered
					}
					p.release(w)
					done <- completion{it: it, w: w, err: err}
				}(it, w)
				continue
			}
			healWait = wait
		}

		// Nothing dispatchable: wait for one of our dispatches to finish,
		// any seat in the fleet to free (it may belong to a concurrent
		// Run), the nearest backoff to expire, or cancellation. While
		// tasks are still queued the sleep is capped at a short poll:
		// the freed channel is a best-effort single token shared by every
		// concurrent Run, so a burst of seat releases can drop signals —
		// without the poll, a Run whose tasks are excluded from the only
		// idle worker could miss the wakeup and stall until cancellation.
		var timerC <-chan time.Time
		var timer *time.Timer
		if len(queue) > 0 && (healWait <= 0 || healWait > seatPollInterval) {
			healWait = seatPollInterval
		}
		if healWait > 0 {
			timer = time.NewTimer(healWait)
			timerC = timer.C
		}
		var ctxDone <-chan struct{}
		if !cancelled {
			ctxDone = ctx.Done()
		}
		select {
		case c := <-done:
			inflight--
			p.settle(ctx, c, &queue, errs)
		case <-p.freed:
		case <-timerC:
		case <-ctxDone:
		}
		if timer != nil {
			timer.Stop()
		}
	}

	if err := firstError(errs); err != nil {
		return err
	}
	if skipped > 0 {
		return ctx.Err()
	}
	return nil
}

// settle folds one completed dispatch into the run's state: success
// lands the result, a worker fault re-queues the task for a worker it
// has not faulted on yet (until its attempt budget runs out), any other
// error is the task's own.
func (p *RemotePool) settle(ctx context.Context, c completion, queue *[]item, errs []error) {
	switch {
	case c.err == nil:
		errs[c.it.i] = nil
	case IsWorkerFault(c.err) && ctx.Err() == nil && c.it.attempts < p.maxAttempts:
		c.it.lastErr = c.err
		if !c.it.exclude(c.w, len(p.specs)) {
			// Every worker has faulted this item once: clear the history
			// so it may probe the (possibly recovering) fleet again.
			c.it.excluded = nil
		}
		*queue = append(*queue, c.it)
	case IsWorkerFault(c.err) && c.it.attempts >= p.maxAttempts:
		errs[c.it.i] = fmt.Errorf("pool: task %d failed on %d dispatches, giving up: %w", c.it.i, c.it.attempts, c.err)
	default:
		errs[c.it.i] = c.err
	}
}
