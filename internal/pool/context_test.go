package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunContextCompletesWithoutCancellation(t *testing.T) {
	p := New(2)
	defer p.Close()
	var ran atomic.Int64
	if err := p.RunContext(context.Background(), 20, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if ran.Load() != 20 {
		t.Errorf("ran %d tasks, want 20", ran.Load())
	}
}

func TestRunContextPreCancelledSkipsEverything(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := p.RunContext(ctx, 10, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran despite pre-cancelled context", ran.Load())
	}
}

func TestRunContextStopsSubmittingMidway(t *testing.T) {
	p := New(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	// The first task cancels the context; with one worker every later
	// task is still unsubmitted at that point and must never start.
	err := p.RunContext(ctx, 50, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most a couple of tasks can already sit in the submission window.
	if n := ran.Load(); n >= 50 || n < 1 {
		t.Errorf("ran %d of 50 tasks, want an early stop", n)
	}
}

func TestRunContextTaskErrorWinsOverCancellation(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := p.RunContext(ctx, 8, func(_ context.Context, i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the lowest-index task error", err)
	}
}
