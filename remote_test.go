package rentmin_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rentmin"
)

// stubWorker is an in-process rentmin.RemoteWorker: it solves for real
// (so costs can be cross-validated against the local backend) but can be
// flipped into a dead state where every dispatch faults.
type stubWorker struct {
	name   string
	cap    int
	dead   atomic.Bool
	solves atomic.Int64
	capErr error
}

func (w *stubWorker) Name() string { return w.name }

func (w *stubWorker) Capacity(ctx context.Context) (int, error) {
	if w.capErr != nil {
		return 0, w.capErr
	}
	return w.cap, nil
}

func (w *stubWorker) Solve(ctx context.Context, p *rentmin.Problem, opts *rentmin.SolveOptions) (rentmin.Solution, error) {
	if w.dead.Load() {
		return rentmin.Solution{}, &rentmin.WorkerFaultError{Worker: w.name, Err: errors.New("connection refused")}
	}
	sol, err := rentmin.SolveContext(ctx, p, opts)
	if err != nil {
		return rentmin.Solution{}, err
	}
	w.solves.Add(1)
	return sol, nil
}

func remotePool(t *testing.T, workers ...rentmin.RemoteWorker) *rentmin.SolverPool {
	t.Helper()
	pool, err := rentmin.NewRemoteSolverPool(context.Background(), workers, &rentmin.RemoteConfig{
		Backoff: func(int) time.Duration { return time.Millisecond },
	})
	if err != nil {
		t.Fatalf("NewRemoteSolverPool: %v", err)
	}
	t.Cleanup(pool.Close)
	return pool
}

// TestRemoteSolverPoolMatchesLocal is the distribution acceptance
// criterion at the API level: a batch through a remote-backed pool lands
// the exact per-item costs of a local solve, in input order, and the
// items genuinely spread across the fleet.
func TestRemoteSolverPoolMatchesLocal(t *testing.T) {
	problems := batchProblems(t)
	want, err := rentmin.SolveBatch(problems, &rentmin.SolveOptions{Workers: 1})
	if err != nil {
		t.Fatalf("local batch: %v", err)
	}

	w0 := &stubWorker{name: "w0", cap: 2}
	w1 := &stubWorker{name: "w1", cap: 2}
	pool := remotePool(t, w0, w1)
	if got, wantCap := pool.Workers(), 4; got != wantCap {
		t.Errorf("fleet capacity = %d, want %d (discovered per worker)", got, wantCap)
	}
	if !pool.Remote() {
		t.Errorf("pool does not report itself remote")
	}

	sols, err := pool.SolveBatch(problems, nil)
	if err != nil {
		t.Fatalf("remote batch: %v", err)
	}
	for i := range sols {
		if sols[i].Alloc.Cost != want[i].Alloc.Cost {
			t.Errorf("problem %d: remote cost %d != local cost %d", i, sols[i].Alloc.Cost, want[i].Alloc.Cost)
		}
		if !sols[i].Proven {
			t.Errorf("problem %d: remote solve not proven", i)
		}
	}
	if w0.solves.Load() == 0 || w1.solves.Load() == 0 {
		t.Errorf("batch did not span the fleet: w0=%d w1=%d solves", w0.solves.Load(), w1.solves.Load())
	}
	if total := w0.solves.Load() + w1.solves.Load(); total != int64(len(problems)) {
		t.Errorf("fleet solved %d items for a %d-problem batch", total, len(problems))
	}
}

// TestRemoteSolverPoolSurvivesDeadWorker kills one worker and expects
// the full, correct result set via re-dispatch — the coordinator-side
// version of the CI distributed-smoke assertion.
func TestRemoteSolverPoolSurvivesDeadWorker(t *testing.T) {
	problems := batchProblems(t)
	want, err := rentmin.SolveBatch(problems, &rentmin.SolveOptions{Workers: 1})
	if err != nil {
		t.Fatalf("local batch: %v", err)
	}

	w0 := &stubWorker{name: "w0", cap: 2}
	w1 := &stubWorker{name: "w1", cap: 2}
	w1.dead.Store(true) // dead from the start: every item it gets must re-dispatch
	pool := remotePool(t, w0, w1)

	sols, err := pool.SolveBatch(problems, nil)
	if err != nil {
		t.Fatalf("batch with dead worker: %v", err)
	}
	for i := range sols {
		if sols[i].Alloc.Cost != want[i].Alloc.Cost {
			t.Errorf("problem %d: cost %d != local cost %d", i, sols[i].Alloc.Cost, want[i].Alloc.Cost)
		}
	}
	if w0.solves.Load() != int64(len(problems)) {
		t.Errorf("healthy worker solved %d of %d items", w0.solves.Load(), len(problems))
	}

	stats := pool.WorkerStats()
	if len(stats) != 2 {
		t.Fatalf("WorkerStats returned %d entries, want 2", len(stats))
	}
	byName := map[string]rentmin.WorkerStatus{stats[0].Name: stats[0], stats[1].Name: stats[1]}
	if byName["w1"].Faults == 0 {
		t.Errorf("dead worker shows no faults: %+v", byName["w1"])
	}
	if byName["w0"].Succeeded != int64(len(problems)) {
		t.Errorf("healthy worker stats: %+v", byName["w0"])
	}
}

// TestRemoteSolverPoolSingleSolve routes SolveContext through the fleet.
func TestRemoteSolverPoolSingleSolve(t *testing.T) {
	w0 := &stubWorker{name: "w0", cap: 1}
	pool := remotePool(t, w0)
	p := rentmin.IllustratingExample()
	p.Target = 70
	sol, err := pool.SolveContext(context.Background(), p, nil)
	if err != nil {
		t.Fatalf("SolveContext: %v", err)
	}
	if sol.Alloc.Cost != 124 {
		t.Errorf("cost = %d, want 124", sol.Alloc.Cost)
	}
	if w0.solves.Load() != 1 {
		t.Errorf("worker solved %d problems, want 1", w0.solves.Load())
	}
}

// TestReregisterKeepsTransport: re-adding a worker under a name that
// already has a transport installed must keep the existing transport —
// registration is a periodic announce, and replacing the transport on
// every re-announce would reset per-transport state (the HTTP worker's
// content-cache upload dedup). Dispatches after the re-add must land on
// the original object.
func TestReregisterKeepsTransport(t *testing.T) {
	original := &stubWorker{name: "w0", cap: 2}
	pool := remotePool(t, original)

	replacement := &stubWorker{name: "w0", cap: 2}
	if _, err := pool.AddRemoteWorker(context.Background(), replacement); err != nil {
		t.Fatalf("re-register: %v", err)
	}

	p := rentmin.IllustratingExample()
	p.Target = 70
	if _, err := pool.SolveContext(context.Background(), p, nil); err != nil {
		t.Fatalf("SolveContext after re-register: %v", err)
	}
	if got := original.solves.Load(); got != 1 {
		t.Errorf("original transport solved %d problems, want 1", got)
	}
	if got := replacement.solves.Load(); got != 0 {
		t.Errorf("replacement transport solved %d problems, want 0 (must be dropped)", got)
	}

	// A genuinely new name still installs its own transport: with the
	// original worker dead, a solve can only succeed through the joiner.
	original.dead.Store(true)
	joiner := &stubWorker{name: "w1", cap: 1}
	if _, err := pool.AddRemoteWorker(context.Background(), joiner); err != nil {
		t.Fatalf("add joiner: %v", err)
	}
	if _, err := pool.SolveContext(context.Background(), p, nil); err != nil {
		t.Fatalf("SolveContext after join: %v", err)
	}
	if joiner.solves.Load() != 1 {
		t.Errorf("joiner solved %d problems, want 1 (re-dispatch from the dead original)", joiner.solves.Load())
	}
}

// TestRemoteSolverPoolCapacityDiscoveryFailure: a fleet member that
// cannot report capacity fails construction, by name.
func TestRemoteSolverPoolCapacityDiscoveryFailure(t *testing.T) {
	w0 := &stubWorker{name: "w0", cap: 2}
	w1 := &stubWorker{name: "w-broken", cap: 2, capErr: fmt.Errorf("dial tcp: connection refused")}
	_, err := rentmin.NewRemoteSolverPool(context.Background(), []rentmin.RemoteWorker{w0, w1}, nil)
	if err == nil {
		t.Fatal("construction succeeded with unreachable worker")
	}
	if got := err.Error(); !strings.Contains(got, "w-broken") {
		t.Errorf("error %q does not name the unreachable worker", got)
	}
}

// TestWorkerFaultErrorChain pins the error chain the dispatcher relies on.
func TestWorkerFaultErrorChain(t *testing.T) {
	cause := errors.New("connection reset")
	err := fmt.Errorf("rentmin: batch problem 3: %w", &rentmin.WorkerFaultError{Worker: "w0", Err: cause})
	var wf *rentmin.WorkerFaultError
	if !errors.As(err, &wf) || wf.Worker != "w0" {
		t.Fatalf("WorkerFaultError lost in the chain: %v", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("cause lost in the chain: %v", err)
	}
	if !wf.WorkerFault() {
		t.Errorf("WorkerFault() = false")
	}
}
